(* Named fault points: registry semantics, seam soundness (skip/delay
   arms never perturb digests; crash/torn arms end in recovery or an
   explicit refusal, never silent divergence), torn-write truncation
   coverage, the wait_until_triggered directed race window, the
   daemon's fault verb, and faultsweep driver determinism. *)

module Points = Faults.Points

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

(* Every test leaves the process-global registry clean, pass or fail:
   a leaked arm would perturb every later suite in this binary. *)
let clean f () =
  Points.reset_all ();
  Fun.protect ~finally:Points.reset_all f

let workload name scale =
  let spec = Workloads.Suite.find name in
  let program =
    spec.Workloads.Workload.build ~n_contexts:4
      ~grain:Workloads.Workload.Default ~scale
  in
  (spec, program)

let gprs_cfg ?(wal_stable = false) () =
  { Gprs.Engine.default_config with n_contexts = 4; seed = 3; wal_stable }

let arm_ok ?start_hit ?end_hit ?delay_us p a =
  match Points.arm ?start_hit ?end_hit ?delay_us p a with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("arm refused: " ^ m)

(* --- registry ---------------------------------------------------------- *)

let test_names () =
  List.iter
    (fun p ->
      match Points.of_name (Points.to_name p) with
      | Some q -> checkb (Points.to_name p) true (p = q)
      | None -> Alcotest.fail ("name does not round-trip: " ^ Points.to_name p))
    Points.all;
  checkb "unknown name" true (Points.of_name "bogus" = None)

let test_arm_validation () =
  (* unsound combos are refused up front, not at fire time *)
  checkb "skip at wal_append refused" true
    (Result.is_error (Points.arm Points.Wal_append Points.Skip));
  checkb "crash at recovery_redo refused" true
    (Result.is_error (Points.arm Points.Recovery_redo Points.Crash));
  checkb "torn outside wal refused" true
    (Result.is_error (Points.arm Points.Lock_handoff Points.Torn_write));
  checkb "inverted window refused" true
    (Result.is_error
       (Points.arm ~start_hit:5 ~end_hit:2 Points.Wal_append Points.Crash));
  checkb "zero start refused" true
    (Result.is_error
       (Points.arm ~start_hit:0 Points.Wal_append Points.Crash));
  (* the supported matrix is what arm enforces *)
  List.iter
    (fun p ->
      List.iter
        (fun a ->
          checkb
            (Points.to_name p ^ "/" ^ Points.action_name a)
            true
            (Result.is_ok (Points.arm p a)))
        (Points.supported p))
    Points.all

let test_counters_and_window () =
  arm_ok ~start_hit:2 ~end_hit:3 ~delay_us:0 Points.Lock_handoff Points.Delay;
  checki "armed" 1 (Points.armed_count ());
  ignore (Points.sample Points.Lock_handoff);
  ignore (Points.sample Points.Lock_handoff);
  ignore (Points.sample Points.Lock_handoff);
  ignore (Points.sample Points.Lock_handoff);
  let st = Points.status Points.Lock_handoff in
  checki "hits" 4 st.Points.s_hits;
  checki "fires only inside [2,3]" 2 st.Points.s_fires;
  Points.disarm Points.Lock_handoff;
  checki "disarmed" 0 (Points.armed_count ());
  (* disarm keeps counters inspectable; reset clears them *)
  checki "counters survive disarm" 4
    (Points.status Points.Lock_handoff).Points.s_hits;
  checkb "status_all keeps the row" true
    (List.exists
       (fun s -> s.Points.s_point = Points.Lock_handoff)
       (Points.status_all ()));
  Points.reset Points.Lock_handoff;
  checki "reset zeroes" 0 (Points.status Points.Lock_handoff).Points.s_hits

let test_env_arming () =
  Unix.putenv "GPRS_FAULT_POINTS" "lock_handoff=delay:0@2-3,wal_append=crash@5";
  (match Points.arm_from_env () with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let st = Points.status Points.Lock_handoff in
  checkb "delay armed" true (st.Points.s_action = Some Points.Delay);
  checki "window lo" 2 st.Points.s_start;
  checki "window hi" 3 st.Points.s_end;
  checki "delay 0" 0 st.Points.s_delay_us;
  checkb "crash armed" true
    ((Points.status Points.Wal_append).Points.s_action = Some Points.Crash);
  Points.reset_all ();
  Unix.putenv "GPRS_FAULT_POINTS" "wal_append=skip";
  checkb "unsound clause rejected" true (Result.is_error (Points.arm_from_env ()));
  Unix.putenv "GPRS_FAULT_POINTS" ""

(* --- unarmed / benign arms are invisible ------------------------------- *)

let test_delay_zero_invisible () =
  (* A delay:0 arm exercises every seam's armed path without touching
     simulated state: digest AND cycle count must match the unarmed
     run — the faultsweep "no perturbation" contract (DESIGN.md §7). *)
  let spec, program = workload "wordcount" 0.05 in
  let off = Gprs.Engine.run ~lint:`Off (gprs_cfg ()) program in
  arm_ok ~delay_us:0 Points.Lock_handoff Points.Delay;
  arm_ok ~delay_us:0 Points.Wal_append Points.Delay;
  arm_ok ~delay_us:0 Points.Checkpoint_begin Points.Delay;
  let on = Gprs.Engine.run ~lint:`Off (gprs_cfg ()) program in
  checkb "seams were exercised" true
    ((Points.status Points.Lock_handoff).Points.s_fires > 0);
  checks "digest" (spec.Workloads.Workload.digest off)
    (spec.Workloads.Workload.digest on);
  checki "cycles" off.Exec.State.sim_cycles on.Exec.State.sim_cycles

let test_checkpoint_skip_invisible () =
  (* Eliding every retirement checkpoint changes durability, not
     output: digest and cycles are identical (checkpoints are charged
     no simulated cycles). *)
  let spec, program = workload "histogram" 0.05 in
  let off = Gprs.Engine.run ~lint:`Off (gprs_cfg ~wal_stable:true ()) program in
  arm_ok Points.Checkpoint_begin Points.Skip;
  let on = Gprs.Engine.run ~lint:`Off (gprs_cfg ~wal_stable:true ()) program in
  checkb "skipped at least one checkpoint" true
    ((Points.status Points.Checkpoint_begin).Points.s_fires > 0);
  checks "digest" (spec.Workloads.Workload.digest off)
    (spec.Workloads.Workload.digest on);
  checki "cycles" off.Exec.State.sim_cycles on.Exec.State.sim_cycles

(* --- crash / error / torn at engine seams ------------------------------ *)

let test_crash_point_recovers () =
  let spec, program = workload "pbzip2" 0.02 in
  let want =
    spec.Workloads.Workload.digest
      (Gprs.Engine.run ~lint:`Off (gprs_cfg ()) program)
  in
  arm_ok ~start_hit:7 ~end_hit:7 Points.Wal_append Points.Crash;
  match Gprs.Engine.run ~lint:`Off (gprs_cfg ~wal_stable:true ()) program with
  | _ -> Alcotest.fail "armed crash never fired"
  | exception Gprs.Engine.Crashed dump ->
    Points.reset_all ();
    let _a, _secs, resume = Recovery.recover dump in
    let r = resume () in
    checkb "completes" false r.Exec.State.dnc;
    checks "bit-identical" want (spec.Workloads.Workload.digest r)

let test_error_points_surface () =
  let _, program = workload "wordcount" 0.05 in
  arm_ok Points.Lock_handoff Points.Error;
  checkb "lock timeout surfaces" true
    (match Gprs.Engine.run ~lint:`Off (gprs_cfg ()) program with
    | _ -> false
    | exception Points.Fault_error _ -> true);
  Points.reset_all ();
  let _, program = workload "pbzip2" 0.02 in
  arm_ok Points.Alloc_grant Points.Error;
  checkb "allocator failure surfaces" true
    (match Gprs.Engine.run ~lint:`Off (gprs_cfg ()) program with
    | _ -> false
    | exception Points.Fault_error _ -> true)

let test_torn_write_refused () =
  let _, program = workload "pbzip2" 0.02 in
  arm_ok ~start_hit:6 ~end_hit:6 Points.Wal_append Points.Torn_write;
  match Gprs.Engine.run ~lint:`Off (gprs_cfg ~wal_stable:true ()) program with
  | _ -> Alcotest.fail "torn write never fired"
  | exception Gprs.Engine.Crashed dump ->
    Points.reset_all ();
    checkb "recovery refuses the torn image" true
      (match Recovery.recover dump with
      | _ -> false
      | exception Wal.Corrupt _ -> true)

(* Exhaustive truncation sweep: cut the stable image after every byte.
   A cut inside a line is a torn record — parse must refuse. A cut at a
   line boundary is a valid shorter image (clean shutdown mid-history):
   analysis either succeeds or refuses a checkpoint-less prefix, and
   recovery from a mid-line cut must refuse end to end. *)
let test_truncation_boundaries () =
  let _, program = workload "histogram" 0.05 in
  let cfg = { (gprs_cfg ()) with Gprs.Engine.crash_lsn = Some 25 } in
  match Gprs.Engine.run ~lint:`Off cfg program with
  | _ -> Alcotest.fail "crash never fired"
  | exception Gprs.Engine.Crashed dump ->
    let image = Gprs.Engine.dump_wal_image dump in
    let n = String.length image in
    checkb "image non-trivial" true (n > 100);
    let mid_line_refused = ref 0 and boundary_ok = ref 0 in
    (* a cut keeping everything up to (or up to-but-excluding) a newline
       is a record boundary: the prefix is a well-formed shorter image *)
    let boundary cut = image.[cut - 1] = '\n' || image.[cut] = '\n' in
    for cut = 1 to n - 1 do
      let prefix = String.sub image 0 cut in
      if boundary cut then begin
        (* line boundary: a well-formed shorter history *)
        (match Recovery.analyze prefix with
        | _ -> ()
        | exception Wal.Corrupt _ -> ());
        incr boundary_ok
      end
      else
        match Wal.parse_image prefix with
        | _ ->
          Alcotest.fail
            (Printf.sprintf "mid-line cut at %d parsed as valid" cut)
        | exception Wal.Corrupt _ -> incr mid_line_refused
    done;
    checkb "swept mid-line cuts" true (!mid_line_refused > 0);
    checkb "swept boundary cuts" true (!boundary_ok > 0);
    (* end to end: recovery of a mid-line truncation refuses *)
    let cut = ref (n - 1) in
    while boundary !cut do decr cut done;
    checkb "recover refuses truncation" true
      (match
         Recovery.recover ~mangle:(fun s -> String.sub s 0 !cut) dump
       with
      | _ -> false
      | exception Wal.Corrupt _ -> true)

(* --- wait_until_triggered: a directed race window ---------------------- *)

let test_wait_immediate_and_timeout () =
  checkb "n<=0 immediate" true (Points.wait_until_triggered Points.Wal_fsync 0);
  checkb "times out unarmed" false
    (Points.wait_until_triggered ~timeout_s:0.05 Points.Wal_fsync 1)

let test_checkpoint_window_crash () =
  (* The directed schedule a racy sleep cannot express: block until the
     B record of a retirement checkpoint is provably written, then let
     the armed crash land before the matching E. The stable image must
     show B-without-E and recovery must fall back to the previous
     complete checkpoint, bit-identically. *)
  let spec, program = workload "histogram" 0.05 in
  let want =
    spec.Workloads.Workload.digest
      (Gprs.Engine.run ~lint:`Off (gprs_cfg ()) program)
  in
  arm_ok ~delay_us:0 Points.Checkpoint_begin Points.Delay;
  arm_ok ~start_hit:1 ~end_hit:1 Points.Checkpoint_end Points.Crash;
  let outcome = ref `Pending in
  let t =
    Thread.create
      (fun () ->
        outcome :=
          match
            Gprs.Engine.run ~lint:`Off (gprs_cfg ~wal_stable:true ()) program
          with
          | _ -> `Completed
          | exception Gprs.Engine.Crashed d -> `Crashed d
          | exception e -> `Raised e)
      ()
  in
  checkb "checkpoint_begin observed" true
    (Points.wait_until_triggered ~timeout_s:30.0 Points.Checkpoint_begin 1);
  Thread.join t;
  match !outcome with
  | `Pending -> Alcotest.fail "runner never finished"
  | `Completed -> Alcotest.fail "crash inside the checkpoint window never fired"
  | `Raised e -> raise e
  | `Crashed dump ->
    Points.reset_all ();
    (* the image ends with a B that never got its E *)
    let recs = Wal.parse_image (Gprs.Engine.dump_wal_image dump) in
    let rec last_ckpt acc = function
      | [] -> acc
      | Wal.S_ckpt_begin _ :: tl -> last_ckpt `Begin tl
      | Wal.S_ckpt_end _ :: tl -> last_ckpt `End tl
      | _ :: tl -> last_ckpt acc tl
    in
    checkb "B without E" true (last_ckpt `None recs = `Begin);
    let _a, _secs, resume = Recovery.recover dump in
    let r = resume () in
    checkb "completes" false r.Exec.State.dnc;
    checks "bit-identical" want (spec.Workloads.Workload.digest r)

(* --- the daemon's fault verb ------------------------------------------- *)

let with_daemon ~allow_fault f =
  let d =
    Server.Daemon.start
      {
        Server.Daemon.default_config with
        addr = Server.Daemon.Tcp 0;
        allow_fault;
      }
  in
  Fun.protect ~finally:(fun () -> Server.Daemon.stop d) @@ fun () ->
  let c = Server.Client.connect (Server.Daemon.bound_addr d) in
  Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () -> f d c

let jstr key j = Result.value ~default:"" (Server.Json.str ~default:"" key j)
let jint key j = Result.value ~default:(-1) (Server.Json.int ~default:(-1) key j)

let test_fault_verb_gated () =
  with_daemon ~allow_fault:false (fun _d c ->
      let r = Server.Client.fault c [ ("verb", Server.Json.Str "status") ] in
      checks "refused" "error" (jstr "event" r);
      checki "403" 403 (jint "code" r))

let test_fault_verb_arm_status_reset () =
  with_daemon ~allow_fault:true (fun d c ->
      let r =
        Server.Client.fault c
          [
            ("verb", Server.Json.Str "arm");
            ("point", Server.Json.Str "admission_enqueue");
            ("fault", Server.Json.Str "error");
          ]
      in
      checks "armed" "fault" (jstr "event" r);
      checki "stats reports armed points" 1
        (jint "fault_points" (Server.Daemon.stats_json d));
      (* a run request is shed by the injected admission fault *)
      let scn =
        {
          Server.Scenario.id = "f1";
          workload = "histogram";
          engine = "gprs";
          ordering = "balance-aware";
          contexts = 4;
          scale = 0.02;
          grain = "default";
          seed = 7;
          rate = 0.0;
          interval = 0.05;
          want_stats = false;
        }
      in
      let reply = Server.Client.run_sync c scn in
      checks "shed" "error" (jstr "event" reply);
      checki "429" 429 (jint "code" reply);
      (* unsound arm is refused over the wire too *)
      let bad =
        Server.Client.fault c
          [
            ("verb", Server.Json.Str "arm");
            ("point", Server.Json.Str "wal_append");
            ("fault", Server.Json.Str "skip");
          ]
      in
      checks "unsound refused" "error" (jstr "event" bad);
      let r = Server.Client.fault c [ ("verb", Server.Json.Str "reset_all") ] in
      checks "reset" "fault" (jstr "event" r);
      checki "disarmed" 0 (jint "fault_points" (Server.Daemon.stats_json d));
      (* disarmed, the same request executes normally *)
      let reply =
        Server.Client.run_sync c { scn with Server.Scenario.id = "f2" }
      in
      checks "runs clean after reset" "done" (jstr "event" reply))

(* --- faultsweep driver ------------------------------------------------- *)

let tiny_matrix =
  {|{ "defaults": { "workload": "histogram", "engine": "gprs",
                    "contexts": 4, "scale": 0.05, "seed": 1 },
     "scenarios": [
       { "name": "crash", "point": "wal_append", "action": "crash",
         "triggers": [4] },
       { "name": "quiet", "point": "wal_append", "action": "crash",
         "start": 999999 } ] }|}

let run_tiny ?only ?seed () =
  let j =
    match Server.Json.of_string tiny_matrix with
    | Ok j -> j
    | Error m -> Alcotest.fail m
  in
  match Faultsweep.run_matrix ?only ?seed j with
  | Ok (out, ok) -> (Server.Json.to_string out, ok)
  | Error m -> Alcotest.fail m

let test_faultsweep_deterministic () =
  let a, ok_a = run_tiny () in
  let b, ok_b = run_tiny () in
  checkb "all rows benign" true (ok_a && ok_b);
  checks "byte-identical replay" a b;
  (* signatures present in the rendered results *)
  let contains needle =
    let n = String.length needle and h = String.length a in
    let rec go i = i + n <= h && (String.sub a i n = needle || go (i + 1)) in
    go 0
  in
  checkb "ok signature" true (contains Recovery.Signature.ok);
  checkb "not-triggered signature" true
    (contains Recovery.Signature.not_triggered)

let test_faultsweep_filter_and_seed () =
  let a, _ = run_tiny ~only:[ "quiet" ] () in
  checkb "filter keeps one row" true
    (match Server.Json.of_string a with
    | Ok j -> Result.value ~default:(-1) (Server.Json.int "rows" j) = 1
    | Error _ -> false);
  let s0, _ = run_tiny ~seed:0 () in
  let s9, _ = run_tiny ~seed:9 () in
  checkb "seed changes the sweep" true (s0 <> s9);
  let s9', _ = run_tiny ~seed:9 () in
  checks "same seed replays" s9 s9'

let suite =
  [
    Alcotest.test_case "names round-trip" `Quick (clean test_names);
    Alcotest.test_case "arm validation" `Quick (clean test_arm_validation);
    Alcotest.test_case "trigger window and counters" `Quick
      (clean test_counters_and_window);
    Alcotest.test_case "GPRS_FAULT_POINTS arming" `Quick
      (clean test_env_arming);
    Alcotest.test_case "delay:0 arms are invisible" `Quick
      (clean test_delay_zero_invisible);
    Alcotest.test_case "checkpoint skip is invisible" `Quick
      (clean test_checkpoint_skip_invisible);
    Alcotest.test_case "crash point recovers bit-identically" `Quick
      (clean test_crash_point_recovers);
    Alcotest.test_case "error points surface as Fault_error" `Quick
      (clean test_error_points_surface);
    Alcotest.test_case "torn write is refused" `Quick
      (clean test_torn_write_refused);
    Alcotest.test_case "truncation boundary sweep" `Quick
      (clean test_truncation_boundaries);
    Alcotest.test_case "wait_until_triggered edge cases" `Quick
      (clean test_wait_immediate_and_timeout);
    Alcotest.test_case "directed checkpoint-window crash" `Quick
      (clean test_checkpoint_window_crash);
    Alcotest.test_case "fault verb gated without flag" `Quick
      (clean test_fault_verb_gated);
    Alcotest.test_case "fault verb arm/shed/status/reset" `Quick
      (clean test_fault_verb_arm_status_reset);
    Alcotest.test_case "faultsweep byte-deterministic" `Quick
      (clean test_faultsweep_deterministic);
    Alcotest.test_case "faultsweep filter and seed replay" `Quick
      (clean test_faultsweep_filter_and_seed);
  ]
