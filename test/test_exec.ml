(* Baseline (Pthreads) executor tests: whole small programs run on the
   simulated machine, checking results, synchronization semantics, cost
   accounting and determinism. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let run ?(n_contexts = 4) ?(seed = 1) ?max_cycles program =
  Exec.Baseline.run
    { Exec.Baseline.default_config with n_contexts; seed; max_cycles }
    program

(* A program where [workers] threads each add their tid-derived value into
   a private slot; main sums the slots. Result lands at address 0. *)
let fork_join_sum ~workers =
  let open Vm.Builder in
  let worker = proc "worker" in
  (* r0 = slot index *)
  work_const worker 400_000 (fun env ->
      let i = Vm.Env.get env 0 in
      env.Vm.Env.write (1 + i) ((i + 1) * 10));
  exit_ worker;
  let main = proc "main" in
  (* Fork workers, storing tids in r10+i. *)
  for i = 0 to workers - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [| i |])
  done;
  for i = 0 to workers - 1 do
    join_reg main (10 + i)
  done;
  work_const main 100 (fun env ->
      let sum = ref 0 in
      for i = 0 to workers - 1 do
        sum := !sum + env.Vm.Env.read (1 + i)
      done;
      env.Vm.Env.write 0 !sum);
  exit_ main;
  program ~mem_words:1024 ~n_groups:2 ~entry:"main"
    [ finish main; finish worker ]

let expected_sum workers = workers * (workers + 1) / 2 * 10

let test_fork_join_sum () =
  let r = run (fork_join_sum ~workers:8) in
  checkb "completed" false r.Exec.State.dnc;
  check "sum" (expected_sum 8) (Vm.Mem.read r.Exec.State.final_mem 0)

let test_fork_join_more_workers_than_contexts () =
  let r = run ~n_contexts:2 (fork_join_sum ~workers:16) in
  check "sum" (expected_sum 16) (Vm.Mem.read r.Exec.State.final_mem 0)

let test_single_context_still_correct () =
  let r = run ~n_contexts:1 (fork_join_sum ~workers:5) in
  check "sum" (expected_sum 5) (Vm.Mem.read r.Exec.State.final_mem 0)

(* Mutual exclusion: [workers] threads increment a shared counter [iters]
   times each under a mutex. Counter at address 0. *)
let locked_counter ~workers ~iters =
  let open Vm.Builder in
  let worker = proc "worker" in
  for_up worker ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> iters) (fun () ->
      lock_const worker 0;
      work_const worker 50 (fun env ->
          env.Vm.Env.write 0 (env.Vm.Env.read 0 + 1));
      unlock_const worker 0);
  exit_ worker;
  let main = proc "main" in
  for i = 0 to workers - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [||])
  done;
  for i = 0 to workers - 1 do
    join_reg main (10 + i)
  done;
  exit_ main;
  program ~mem_words:64 ~n_mutexes:1 ~n_groups:2 ~entry:"main"
    [ finish main; finish worker ]

let test_mutex_counter () =
  let r = run (locked_counter ~workers:6 ~iters:25) in
  check "count" 150 (Vm.Mem.read r.Exec.State.final_mem 0)

(* Barrier phases: each of [n] threads writes phase tags; after the
   barrier each verifies all phase-0 writes are visible. Failures are
   written to an error flag at address 0. *)
let barrier_program ~n =
  let open Vm.Builder in
  let worker = proc "worker" in
  work_const worker 100 (fun env ->
      let i = Vm.Env.get env 0 in
      env.Vm.Env.write (10 + i) 1);
  barrier worker 0;
  work_const worker 100 (fun env ->
      let ok = ref true in
      for j = 0 to n - 1 do
        if env.Vm.Env.read (10 + j) <> 1 then ok := false
      done;
      if not !ok then env.Vm.Env.write 0 1);
  exit_ worker;
  let main = proc "main" in
  for i = 0 to n - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [| i |])
  done;
  for i = 0 to n - 1 do
    join_reg main (10 + i)
  done;
  exit_ main;
  program ~mem_words:256 ~barrier_parties:[| n |] ~n_groups:2 ~entry:"main"
    [ finish main; finish worker ]

let test_barrier_phases () =
  let r = run ~n_contexts:3 (barrier_program ~n:7) in
  check "no ordering violation" 0 (Vm.Mem.read r.Exec.State.final_mem 0)

(* Producer/consumer over a 1-slot mailbox with condvars. Producer sends
   [items] values; consumer accumulates into address 1.
   Address 0 = full flag, address 2 = next value. *)
let prod_cons ~items =
  let open Vm.Builder in
  let producer = proc "producer" in
  for_up producer ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> items) (fun () ->
      lock_const producer 0;
      (* while full, wait on cond 0 *)
      let top = fresh_label producer and done_ = fresh_label producer in
      bind producer top;
      if_to producer (fun _ -> false) done_;
      (* re-check inside Work: copy full flag to r2 *)
      work_const producer 10 (fun env ->
          Vm.Env.set env 2 (env.Vm.Env.read 0));
      let no_wait = fresh_label producer in
      if_to producer (fun regs -> regs.(2) = 0) no_wait;
      cond_wait producer ~c:0 ~m:0;
      goto producer top;
      bind producer no_wait;
      work_const producer 20 (fun env ->
          env.Vm.Env.write 2 (Vm.Env.get env 1 + 1);
          env.Vm.Env.write 0 1);
      cond_signal producer 1;
      unlock_const producer 0;
      bind producer done_);
  exit_ producer;
  let consumer = proc "consumer" in
  for_up consumer ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> items) (fun () ->
      lock_const consumer 0;
      let top = fresh_label consumer in
      bind consumer top;
      work_const consumer 10 (fun env ->
          Vm.Env.set env 2 (env.Vm.Env.read 0));
      let no_wait = fresh_label consumer in
      if_to consumer (fun regs -> regs.(2) = 1) no_wait;
      cond_wait consumer ~c:1 ~m:0;
      goto consumer top;
      bind consumer no_wait;
      work_const consumer 20 (fun env ->
          env.Vm.Env.write 1 (env.Vm.Env.read 1 + env.Vm.Env.read 2);
          env.Vm.Env.write 0 0);
      cond_signal consumer 0;
      unlock_const consumer 0);
  exit_ consumer;
  let main = proc "main" in
  fork main ~group:1 ~proc:"producer" ~dst:10 (fun _ -> [||]);
  fork main ~group:2 ~proc:"consumer" ~dst:11 (fun _ -> [||]);
  join_reg main 10;
  join_reg main 11;
  exit_ main;
  program ~mem_words:64 ~n_mutexes:1 ~n_condvars:2 ~n_groups:3 ~entry:"main"
    [ finish main; finish producer; finish consumer ]

let test_producer_consumer () =
  let items = 20 in
  let r = run ~n_contexts:2 (prod_cons ~items) in
  check "sum of 1..items" (items * (items + 1) / 2)
    (Vm.Mem.read r.Exec.State.final_mem 1)

let test_atomic_rmw () =
  let open Vm.Builder in
  let worker = proc "worker" in
  for_up worker ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> 10) (fun () ->
      atomic worker ~var:(fun _ -> 0) ~dst:2 (fun ~old _ -> old + 1));
  exit_ worker;
  let main = proc "main" in
  for i = 0 to 3 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [||])
  done;
  for i = 0 to 3 do
    join_reg main (10 + i)
  done;
  (* copy atomic into memory via a final check thread is overkill; read
     nothing — the atomic array is not in run_result, so mirror to mem. *)
  atomic main ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old);
  work_const main 1 (fun env -> env.Vm.Env.write 0 (Vm.Env.get env 3));
  exit_ main;
  let p =
    program ~mem_words:64 ~n_atomics:1 ~n_groups:2 ~entry:"main"
      [ finish main; finish worker ]
  in
  let r = run p in
  check "atomic increments" 40 (Vm.Mem.read r.Exec.State.final_mem 0)

let test_alloc_free_in_threads () =
  let open Vm.Builder in
  let worker = proc "worker" in
  alloc worker ~size:(fun _ -> 16) ~dst:1;
  work_const worker 100 (fun env ->
      let a = Vm.Env.get env 1 in
      for i = 0 to 15 do
        env.Vm.Env.write (a + i) i
      done;
      let s = ref 0 in
      for i = 0 to 15 do
        s := !s + env.Vm.Env.read (a + i)
      done;
      Vm.Env.set env 2 !s);
  free worker (fun regs -> regs.(1));
  atomic worker ~var:(fun _ -> 0) ~dst:3 (fun ~old regs -> old + regs.(2));
  exit_ worker;
  let main = proc "main" in
  for i = 0 to 3 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [||])
  done;
  for i = 0 to 3 do
    join_reg main (10 + i)
  done;
  atomic main ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old);
  work_const main 1 (fun env -> env.Vm.Env.write 0 (Vm.Env.get env 3));
  exit_ main;
  let p =
    program ~mem_words:4096 ~n_atomics:1 ~n_groups:2 ~entry:"main"
      [ finish main; finish worker ]
  in
  let r = run p in
  check "sum over allocs" (4 * 120) (Vm.Mem.read r.Exec.State.final_mem 0)

let test_file_io () =
  let open Vm.Builder in
  let main = proc "main" in
  (* copy input file doubled into output file *)
  set_reg main 0 (fun _ -> 0);
  while_ main
    (fun regs -> regs.(0) < 5)
    (fun () ->
      work_const main 10 (fun env ->
          let i = Vm.Env.get env 0 in
          let v = env.Vm.Env.file_read 0 ~off:i in
          env.Vm.Env.file_write 1 ~off:i (2 * v));
      set_reg main 0 (fun regs -> regs.(0) + 1));
  exit_ main;
  let p =
    program ~mem_words:64 ~entry:"main"
      ~input_files:[ ("in", [| 1; 2; 3; 4; 5 |]) ]
      ~output_files:[ "out" ] [ finish main ]
  in
  let r = run p in
  match r.Exec.State.outputs with
  | [ ("out", data) ] -> Alcotest.(check (array int)) "doubled" [| 2; 4; 6; 8; 10 |] data
  | _ -> Alcotest.fail "expected one output file"

let test_deadlock_detected () =
  let open Vm.Builder in
  (* Two threads lock two mutexes in opposite orders with a barrier in
     between to force the interleaving. *)
  let a = proc "a" in
  lock_const a 0;
  barrier a 0;
  lock_const a 1;
  unlock_const a 1;
  unlock_const a 0;
  exit_ a;
  let b = proc "b" in
  lock_const b 1;
  barrier b 0;
  lock_const b 0;
  unlock_const b 0;
  unlock_const b 1;
  exit_ b;
  let main = proc "main" in
  fork main ~group:0 ~proc:"a" ~dst:10 (fun _ -> [||]);
  fork main ~group:0 ~proc:"b" ~dst:11 (fun _ -> [||]);
  join_reg main 10;
  join_reg main 11;
  exit_ main;
  let p =
    program ~mem_words:64 ~n_mutexes:2 ~barrier_parties:[| 2 |] ~entry:"main"
      [ finish main; finish a; finish b ]
  in
  checkb "deadlock raised" true
    (try
       ignore (run p);
       false
     with Exec.State.Deadlock _ -> true)

let test_dnc_budget () =
  let r = run ~max_cycles:500 (fork_join_sum ~workers:8) in
  checkb "flagged dnc" true r.Exec.State.dnc

let test_determinism_same_seed () =
  let r1 = run ~seed:7 (locked_counter ~workers:4 ~iters:10) in
  let r2 = run ~seed:7 (locked_counter ~workers:4 ~iters:10) in
  check "same cycles" r1.Exec.State.sim_cycles r2.Exec.State.sim_cycles;
  check "same instrs"
    (Sim.Stats.get r1.Exec.State.run_stats "instrs")
    (Sim.Stats.get r2.Exec.State.run_stats "instrs")

let test_parallel_speedup () =
  let p = fork_join_sum ~workers:8 in
  let t1 = (run ~n_contexts:1 p).Exec.State.sim_cycles in
  let t8 = (run ~n_contexts:8 p).Exec.State.sim_cycles in
  checkb
    (Printf.sprintf "8 contexts beat 1 (%d vs %d)" t8 t1)
    true
    (t8 * 3 < t1 * 2)

let test_stats_populated () =
  let r = run (fork_join_sum ~workers:4) in
  checkb "instrs counted" true (Sim.Stats.get r.Exec.State.run_stats "instrs" > 0);
  check "threads created" 4 (Sim.Stats.get r.Exec.State.run_stats "threads.created")

let test_cond_broadcast () =
  (* Main broadcasts once all [n] waiters are asleep; all must wake. *)
  let open Vm.Builder in
  let n = 5 in
  let waiter = proc "waiter" in
  lock_const waiter 0;
  work_const waiter 5 (fun env ->
      env.Vm.Env.write 1 (env.Vm.Env.read 1 + 1) (* asleep count *));
  cond_wait waiter ~c:0 ~m:0;
  work_const waiter 5 (fun env -> env.Vm.Env.write 0 (env.Vm.Env.read 0 + 1));
  unlock_const waiter 0;
  exit_ waiter;
  let main = proc "main" in
  for i = 0 to n - 1 do
    fork main ~group:1 ~proc:"waiter" ~dst:(10 + i) (fun _ -> [||])
  done;
  (* wait until all asleep: poll the counter *)
  let top = fresh_label main in
  bind main top;
  lock_const main 0;
  work_const main 5 (fun env -> Vm.Env.set env 2 (env.Vm.Env.read 1));
  unlock_const main 0;
  compute main 500;
  if_to main (fun r -> r.(2) < n) top;
  lock_const main 0;
  cond_broadcast main 0;
  unlock_const main 0;
  for i = 0 to n - 1 do
    join_reg main (10 + i)
  done;
  exit_ main;
  let p =
    program ~mem_words:64 ~n_mutexes:1 ~n_condvars:1 ~n_groups:2 ~entry:"main"
      [ finish main; finish waiter ]
  in
  let r = run ~n_contexts:3 p in
  check "all woken" 5 (Vm.Mem.read r.Exec.State.final_mem 0)

let test_join_already_exited () =
  let open Vm.Builder in
  let w = proc "w" in
  compute w 10;
  exit_ w;
  let main = proc "main" in
  fork main ~group:1 ~proc:"w" ~dst:10 (fun _ -> [||]);
  compute main 1_000_000 (* child exits long before the join *);
  join_reg main 10;
  work_const main 1 (fun env -> env.Vm.Env.write 0 7);
  exit_ main;
  let p = program ~mem_words:64 ~n_groups:2 ~entry:"main" [ finish main; finish w ] in
  check "joined" 7 (Vm.Mem.read (run p).Exec.State.final_mem 0)

let test_multiple_joiners () =
  (* Two threads join the same worker; both must proceed. *)
  let open Vm.Builder in
  let w = proc "w" in
  compute w 50_000;
  exit_ w;
  let j = proc "j" in
  join j (fun r -> r.(0));
  atomic j ~var:(fun _ -> 0) ~dst:2 (fun ~old _ -> old + 1);
  exit_ j;
  let main = proc "main" in
  fork main ~group:1 ~proc:"w" ~dst:10 (fun _ -> [||]);
  fork main ~group:1 ~proc:"j" ~dst:11 (fun r -> [| r.(10) |]);
  fork main ~group:1 ~proc:"j" ~dst:12 (fun r -> [| r.(10) |]);
  join_reg main 11;
  join_reg main 12;
  atomic main ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old);
  work_const main 1 (fun env -> env.Vm.Env.write 0 (Vm.Env.get env 3));
  exit_ main;
  let p =
    program ~mem_words:64 ~n_atomics:1 ~n_groups:2 ~entry:"main"
      [ finish main; finish w; finish j ]
  in
  check "both joiners ran" 2 (Vm.Mem.read (run p).Exec.State.final_mem 0)

let test_dynamic_mutex_operand () =
  (* Lock chosen from a register (per-bucket locks). *)
  let open Vm.Builder in
  let w = proc "w" in
  for_up w ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> 12) (fun () ->
      set_reg w 2 (fun r -> r.(1) mod 3);
      lock w (fun r -> r.(2));
      work_const w 20 (fun env ->
          let b = Vm.Env.get env 2 in
          env.Vm.Env.write b (env.Vm.Env.read b + 1));
      unlock w (fun r -> r.(2)));
  exit_ w;
  let main = proc "main" in
  for i = 0 to 2 do
    fork main ~group:1 ~proc:"w" ~dst:(10 + i) (fun _ -> [||])
  done;
  for i = 0 to 2 do
    join_reg main (10 + i)
  done;
  exit_ main;
  let p =
    program ~mem_words:64 ~n_mutexes:3 ~n_groups:2 ~entry:"main"
      [ finish main; finish w ]
  in
  let r = run p in
  List.iter
    (fun b -> check (Printf.sprintf "bucket %d" b) 12 (Vm.Mem.read r.Exec.State.final_mem b))
    [ 0; 1; 2 ]

(* FIFO grant order (see {!Exec.Fifo}): workers arrive at a held mutex in
   a known staggered order; the lock must be granted in exactly that
   order. Each worker records its entry rank at mem[10+rank]. *)
let test_mutex_fifo_grant_order () =
  let open Vm.Builder in
  let n = 5 in
  let w = proc "w" in
  (* stagger arrivals: worker i shows up i*10_000 cycles late *)
  work w ~cost:(fun regs -> 100 + (regs.(0) * 10_000)) (fun _ -> ());
  lock_const w 0;
  work_const w 30_000 (fun env ->
      let rank = env.Vm.Env.read 0 in
      env.Vm.Env.write (10 + rank) (Vm.Env.get env 0);
      env.Vm.Env.write 0 (rank + 1));
  unlock_const w 0;
  exit_ w;
  let main = proc "main" in
  for i = 0 to n - 1 do
    fork main ~group:1 ~proc:"w" ~dst:(10 + i) (fun _ -> [| i |])
  done;
  for i = 0 to n - 1 do
    join_reg main (10 + i)
  done;
  exit_ main;
  let p =
    program ~mem_words:64 ~n_mutexes:1 ~n_groups:2 ~entry:"main"
      [ finish main; finish w ]
  in
  let r = run ~n_contexts:(n + 1) p in
  for i = 0 to n - 1 do
    check
      (Printf.sprintf "grant %d went to worker %d" i i)
      i
      (Vm.Mem.read r.Exec.State.final_mem (10 + i))
  done

(* Condvar sleepers must also wake in FIFO order: workers fall asleep in
   a staggered order, then main signals one at a time; wake rank must
   equal sleep rank for every worker. *)
let test_cond_fifo_wake_order () =
  let open Vm.Builder in
  let n = 4 in
  let w = proc "w" in
  work w ~cost:(fun regs -> 100 + (regs.(0) * 10_000)) (fun _ -> ());
  lock_const w 0;
  work_const w 5 (fun env ->
      let rank = env.Vm.Env.read 0 in
      env.Vm.Env.write (10 + rank) (Vm.Env.get env 0);
      env.Vm.Env.write 0 (rank + 1));
  cond_wait w ~c:0 ~m:0;
  work_const w 5 (fun env ->
      let rank = env.Vm.Env.read 1 in
      env.Vm.Env.write (20 + rank) (Vm.Env.get env 0);
      env.Vm.Env.write 1 (rank + 1));
  unlock_const w 0;
  exit_ w;
  let main = proc "main" in
  for i = 0 to n - 1 do
    fork main ~group:1 ~proc:"w" ~dst:(10 + i) (fun _ -> [| i |])
  done;
  (* wait until all are asleep *)
  let top = fresh_label main in
  bind main top;
  lock_const main 0;
  work_const main 5 (fun env -> Vm.Env.set env 2 (env.Vm.Env.read 0));
  unlock_const main 0;
  compute main 500;
  if_to main (fun r -> r.(2) < n) top;
  (* wake them one at a time, widely spaced *)
  for _ = 1 to n do
    lock_const main 0;
    cond_signal main 0;
    unlock_const main 0;
    compute main 100_000
  done;
  for i = 0 to n - 1 do
    join_reg main (10 + i)
  done;
  exit_ main;
  let p =
    program ~mem_words:64 ~n_mutexes:1 ~n_condvars:1 ~n_groups:2 ~entry:"main"
      [ finish main; finish w ]
  in
  let r = run ~n_contexts:3 p in
  for i = 0 to n - 1 do
    let slept = Vm.Mem.read r.Exec.State.final_mem (10 + i) in
    check (Printf.sprintf "wake %d went to sleeper %d" i slept) slept
      (Vm.Mem.read r.Exec.State.final_mem (20 + i))
  done

let test_implicit_exit_past_end () =
  (* A proc without a trailing Exit terminates implicitly. *)
  let open Vm.Builder in
  let w = proc "w" in
  work_const w 10 (fun env -> env.Vm.Env.write 0 3);
  (* no exit_ *)
  let main = proc "main" in
  fork main ~group:1 ~proc:"w" ~dst:10 (fun _ -> [||]);
  join_reg main 10;
  exit_ main;
  let p = program ~mem_words:64 ~n_groups:2 ~entry:"main" [ finish main; finish w ] in
  check "ran" 3 (Vm.Mem.read (run p).Exec.State.final_mem 0)

let suite =
  [
    Alcotest.test_case "fork/join sum" `Quick test_fork_join_sum;
    Alcotest.test_case "cond broadcast" `Quick test_cond_broadcast;
    Alcotest.test_case "join already exited" `Quick test_join_already_exited;
    Alcotest.test_case "multiple joiners" `Quick test_multiple_joiners;
    Alcotest.test_case "dynamic mutex operand" `Quick test_dynamic_mutex_operand;
    Alcotest.test_case "implicit exit" `Quick test_implicit_exit_past_end;
    Alcotest.test_case "mutex FIFO grant order" `Quick test_mutex_fifo_grant_order;
    Alcotest.test_case "condvar FIFO wake order" `Quick test_cond_fifo_wake_order;
    Alcotest.test_case "oversubscription" `Quick test_fork_join_more_workers_than_contexts;
    Alcotest.test_case "single context" `Quick test_single_context_still_correct;
    Alcotest.test_case "mutex counter" `Quick test_mutex_counter;
    Alcotest.test_case "barrier phases" `Quick test_barrier_phases;
    Alcotest.test_case "producer/consumer condvars" `Quick test_producer_consumer;
    Alcotest.test_case "atomic rmw" `Quick test_atomic_rmw;
    Alcotest.test_case "alloc/free in threads" `Quick test_alloc_free_in_threads;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "dnc budget" `Quick test_dnc_budget;
    Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
    Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
    Alcotest.test_case "stats populated" `Quick test_stats_populated;
  ]
