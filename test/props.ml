(* Property-based tests (qcheck) on the core data structures and the
   system-level recovery invariant. *)

let count = 200

let case ?(count = count) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

open QCheck2

(* --- PRNG ---------------------------------------------------------- *)

let prop_prng_bounds =
  case "prng: int always in bounds"
    Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Sim.Prng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Sim.Prng.int g bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_prng_copy_independent =
  case "prng: copy diverges from original only by its own draws"
    Gen.int
    (fun seed ->
      let a = Sim.Prng.create seed in
      let b = Sim.Prng.copy a in
      ignore (Sim.Prng.int64 b);
      (* a's next draw is unaffected by b's *)
      Sim.Prng.int64 a = Sim.Prng.int64 (Sim.Prng.copy (Sim.Prng.create seed)))

(* --- Event queue: model-based against a sorted list ----------------- *)

let prop_evq_sorted =
  case "event queue: pops are time-sorted and complete"
    Gen.(list_size (int_range 1 200) (int_range 0 10_000))
    (fun times ->
      let q = Sim.Event_queue.create () in
      List.iter (fun t -> ignore (Sim.Event_queue.schedule q ~time:t t)) times;
      let rec drain acc =
        match Sim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times)

let prop_evq_cancel =
  case "event queue: cancelled events never fire"
    Gen.(list_size (int_range 1 100) (pair (int_range 0 1000) bool))
    (fun events ->
      let q = Sim.Event_queue.create () in
      let expected = ref [] in
      List.iter
        (fun (t, keep) ->
          let h = Sim.Event_queue.schedule q ~time:t (t, keep) in
          if keep then expected := t :: !expected
          else Sim.Event_queue.cancel q h)
        events;
      let rec drain acc =
        match Sim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (_, (t, keep)) ->
          if not keep then raise Exit;
          drain (t :: acc)
      in
      match drain [] with
      | popped -> popped = List.sort compare !expected
      | exception Exit -> false)

(* --- Deque: model-based against a list ------------------------------ *)

type dq_op = Push of int | Pop | Steal

let dq_op_gen =
  Gen.(
    frequency
      [ (3, map (fun v -> Push v) int); (2, pure Pop); (2, pure Steal) ])

let prop_deque_model =
  case "deque: matches list model under random ops"
    Gen.(list_size (int_range 1 300) dq_op_gen)
    (fun ops ->
      let d = Sched.Deque.create () in
      let model = ref [] (* front = top/oldest *) in
      List.for_all
        (fun op ->
          match op with
          | Push v ->
            Sched.Deque.push_bottom d v;
            model := !model @ [ v ];
            true
          | Pop -> (
            let got = Sched.Deque.pop_bottom d in
            match List.rev !model with
            | [] -> got = None
            | last :: rest_rev ->
              model := List.rev rest_rev;
              got = Some last)
          | Steal -> (
            let got = Sched.Deque.steal_top d in
            match !model with
            | [] -> got = None
            | first :: rest ->
              model := rest;
              got = Some first))
        ops)

(* --- Waiter FIFO: model-based against a list ------------------------- *)

type fifo_op = FPush of int | FPushFront of int | FPop | FDropOdd

let fifo_op_gen =
  Gen.(
    frequency
      [
        (4, map (fun v -> FPush v) (int_range 0 999));
        (1, map (fun v -> FPushFront v) (int_range 0 999));
        (3, pure FPop);
        (1, pure FDropOdd);
      ])

let prop_fifo_model =
  case "fifo: matches list model under random ops"
    Gen.(list_size (int_range 1 300) fifo_op_gen)
    (fun ops ->
      let q = ref Exec.Fifo.empty in
      let model = ref [] (* head pops first *) in
      List.for_all
        (fun op ->
          match op with
          | FPush v ->
            q := Exec.Fifo.push !q v;
            model := !model @ [ v ];
            true
          | FPushFront v ->
            q := Exec.Fifo.push_front !q v;
            model := v :: !model;
            true
          | FPop -> (
            match (Exec.Fifo.pop !q, !model) with
            | None, [] -> true
            | Some (v, rest), m :: ms ->
              q := rest;
              model := ms;
              v = m
            | _ -> false)
          | FDropOdd ->
            q := Exec.Fifo.filter (fun v -> v mod 2 = 0) !q;
            model := List.filter (fun v -> v mod 2 = 0) !model;
            true)
        ops
      && Exec.Fifo.to_list !q = !model
      && Exec.Fifo.length !q = List.length !model
      && Exec.Fifo.is_empty !q = (!model = [])
      && Exec.Fifo.to_list (Exec.Fifo.of_list !model) = !model)

(* --- Allocator ------------------------------------------------------ *)

let prop_alloc_no_overlap =
  case "allocator: live blocks never overlap"
    Gen.(list_size (int_range 1 60) (int_range 1 32))
    (fun sizes ->
      let m = Vm.Mem.create ~words:8192 in
      let blocks = List.map (fun s -> (Vm.Mem.alloc m s, s)) sizes in
      let sorted = List.sort compare blocks in
      let rec no_overlap = function
        | (a1, s1) :: ((a2, _) :: _ as rest) ->
          a1 + s1 <= a2 && no_overlap rest
        | _ -> true
      in
      no_overlap sorted)

let prop_alloc_free_roundtrip =
  case "allocator: alloc/free/undo round-trips"
    Gen.(list_size (int_range 1 40) (pair (int_range 1 16) bool))
    (fun plan ->
      let m = Vm.Mem.create ~words:4096 in
      let live = ref [] in
      List.iter
        (fun (size, do_free) ->
          let a = Vm.Mem.alloc m size in
          if do_free then Vm.Mem.free m a else live := (a, size) :: !live)
        plan;
      List.for_all
        (fun (a, s) -> Vm.Mem.block_size m a = Some s)
        !live)

let prop_alloc_coalesce =
  case "allocator: frees coalesce — whole arena reallocatable"
    Gen.(pair (list_size (int_range 1 60) (int_range 1 32)) int)
    (fun (sizes, shuffle_seed) ->
      let m = Vm.Mem.create ~words:8192 in
      let blocks = Array.of_list (List.map (fun s -> Vm.Mem.alloc m s) sizes) in
      (* free in a pseudo-random order; adjacency merging must leave a
         single free block regardless *)
      Sim.Prng.shuffle (Sim.Prng.create shuffle_seed) blocks;
      Array.iter (fun a -> Vm.Mem.free m a) blocks;
      Vm.Mem.alloc m 8192 = 0)

(* --- Incremental snapshots: image restore ≡ full-copy restore -------- *)

let mem_writes_gen =
  QCheck2.Gen.(list_size (int_range 0 120) (pair (int_range 0 511) (int_range 0 9999)))

let prop_mem_image_equiv =
  case "mem: restore(incremental image) ≡ restore(full copy)"
    Gen.(triple mem_writes_gen mem_writes_gen mem_writes_gen)
    (fun (w0, w1, w2) ->
      let m = Vm.Mem.create ~words:512 in
      let apply ws = List.iter (fun (a, v) -> Vm.Mem.write m a v) ws in
      let contents () = Array.init 512 (Vm.Mem.read m) in
      apply w0;
      let img1 = Vm.Mem.alloc_image m in
      ignore (Vm.Mem.capture m img1);
      let full1 = contents () in
      apply w1;
      let img2 = Vm.Mem.alloc_image m in
      ignore (Vm.Mem.capture m img2);
      let full2 = contents () in
      apply w2;
      ignore (Vm.Mem.restore_image m img2);
      let ok2 = contents () = full2 in
      ignore (Vm.Mem.restore_image m img1);
      let ok1 = contents () = full1 in
      (* recycle img2 as a pool image: incremental re-capture, then
         restore across fresh dirt *)
      apply w2;
      ignore (Vm.Mem.capture m img2);
      let full3 = contents () in
      apply w1;
      ignore (Vm.Mem.restore_image m img2);
      ok1 && ok2 && contents () = full3)

(* --- Undo log: random writes restore exactly ------------------------ *)

let prop_undo_restores =
  case "undo log: replay restores the pre-state exactly"
    Gen.(list_size (int_range 1 200) (pair (int_range 0 255) (int_range 0 1000)))
    (fun writes ->
      let m = Vm.Mem.create ~words:256 in
      (* scatter an initial state *)
      List.iteri (fun i (a, _) -> Vm.Mem.write m a (i * 7)) writes;
      let initial = Array.init 256 (Vm.Mem.read m) in
      let log = Exec.Undo_log.create () in
      List.iter
        (fun (a, v) ->
          ignore (Exec.Undo_log.note log (Exec.Undo_log.K_mem a) ~old:(Vm.Mem.read m a));
          Vm.Mem.write m a v)
        writes;
      ignore
        (Exec.Undo_log.replay ~mem:m ~atomics:[||] ~io:(Vm.Io.create ()) log);
      Array.for_all2 ( = ) initial (Array.init 256 (Vm.Mem.read m)))

let prop_paged_undo_equiv =
  case "undo log: paged variant counts and restores like the entry log"
    Gen.(list_size (int_range 1 200) (pair (int_range 0 255) (int_range 0 1000)))
    (fun writes ->
      let m = Vm.Mem.create ~words:256 in
      List.iteri (fun i (a, _) -> Vm.Mem.write m a (i * 7)) writes;
      let img = Vm.Mem.alloc_image m in
      ignore (Vm.Mem.capture m img);
      let initial = Array.init 256 (Vm.Mem.read m) in
      let paged = Exec.Undo_log.create ~paged:m () in
      let plain = Exec.Undo_log.create () in
      List.iter
        (fun (a, v) ->
          let old = Vm.Mem.read m a in
          ignore (Exec.Undo_log.note paged (Exec.Undo_log.K_mem a) ~old);
          ignore (Exec.Undo_log.note plain (Exec.Undo_log.K_mem a) ~old);
          Vm.Mem.write m a v)
        writes;
      let same_size = Exec.Undo_log.size paged = Exec.Undo_log.size plain in
      let replayed =
        Exec.Undo_log.replay ~mem:m ~atomics:[||] ~io:(Vm.Io.create ()) paged
      in
      ignore (Vm.Mem.restore_image m img);
      same_size
      && replayed = Exec.Undo_log.size plain
      && Array.for_all2 ( = ) initial (Array.init 256 (Vm.Mem.read m)))

(* --- ROL ------------------------------------------------------------ *)

let prop_rol_head_is_min =
  case "rol: head is always the minimum live id"
    Gen.(list_size (int_range 1 100) (int_range 0 999))
    (fun ids ->
      let ids = List.sort_uniq compare ids in
      let rol = Gprs.Rol.create () in
      let dummy_saved =
        Vm.Tcb.copy_state
          (Vm.Tcb.create ~n_barriers:0 ~tid:0 ~group:0
             ~proc:{ Vm.Isa.pname = "p"; code = [| Vm.Isa.Exit |] }
             ~args:[||])
      in
      List.iter
        (fun id ->
          Gprs.Rol.insert rol (Gprs.Subthread.make ~id ~tid:0 ~now:0 ~saved:dummy_saved))
        ids;
      (* remove a deterministic subset *)
      let kept = List.filteri (fun i _ -> i mod 3 <> 0) ids in
      List.iteri (fun i id -> if i mod 3 = 0 then Gprs.Rol.remove rol id) ids;
      match (Gprs.Rol.head rol, kept) with
      | None, [] -> true
      | Some h, k :: _ -> h.Gprs.Subthread.id = k
      | _ -> false)

let prop_rol_retire_prefix =
  case "rol: retire pops exactly the completed aged prefix"
    Gen.(list_size (int_range 1 60) bool)
    (fun completions ->
      let rol = Gprs.Rol.create () in
      let dummy_saved =
        Vm.Tcb.copy_state
          (Vm.Tcb.create ~n_barriers:0 ~tid:0 ~group:0
             ~proc:{ Vm.Isa.pname = "p"; code = [| Vm.Isa.Exit |] }
             ~args:[||])
      in
      List.iteri
        (fun id complete ->
          let sub = Gprs.Subthread.make ~id ~tid:0 ~now:0 ~saved:dummy_saved in
          if complete then sub.Gprs.Subthread.status <- Gprs.Subthread.Complete 10;
          Gprs.Rol.insert rol sub)
        completions;
      let retired = Gprs.Rol.retire_ready rol ~now:1000 ~latency:100 in
      let expected_prefix =
        let rec count = function true :: rest -> 1 + count rest | _ -> 0 in
        count completions
      in
      List.length retired = expected_prefix)

(* --- Order policies -------------------------------------------------- *)

let prop_order_grants_eligible =
  case "order: the holder is always live and eligible"
    Gen.(
      pair (int_range 1 10)
        (list_size (int_range 1 80) (pair (int_range 0 9) bool)))
    (fun (n_threads, toggles) ->
      let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
      for tid = 0 to n_threads - 1 do
        Gprs.Order.add_thread t ~tid ~group:0
      done;
      List.for_all
        (fun (tid, elig) ->
          Gprs.Order.set_eligible t (tid mod n_threads) elig;
          match Gprs.Order.holder t with
          | None -> true
          | Some h ->
            Gprs.Order.is_eligible t h
            &&
            (Gprs.Order.advance t ~granted:h;
             true))
        toggles)

let prop_order_fair =
  case "order: every eligible thread is granted within one rotation"
    (Gen.int_range 2 12)
    (fun n ->
      let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
      for tid = 0 to n - 1 do
        Gprs.Order.add_thread t ~tid ~group:0
      done;
      let seen = Array.make n false in
      for _ = 1 to n do
        match Gprs.Order.holder t with
        | Some h ->
          seen.(h) <- true;
          Gprs.Order.advance t ~granted:h
        | None -> ()
      done;
      Array.for_all Fun.id seen)

(* --- chunk_bounds ----------------------------------------------------- *)

let prop_chunks_partition =
  case "chunk_bounds: chunks partition the range"
    Gen.(pair (int_range 0 10_000) (int_range 1 64))
    (fun (total, parts) ->
      let ranges = List.init parts (Workloads.Workload.chunk_bounds ~total ~parts) in
      let covered = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges in
      let contiguous =
        let rec go prev = function
          | [] -> true
          | (lo, hi) :: rest -> lo = prev && hi >= lo && go hi rest
        in
        go 0 ranges
      in
      covered = total && contiguous)

(* --- Weighted order: turn-share matches weights ----------------------- *)

let prop_weighted_turn_share =
  case ~count:50 "order: weighted group gets its share of turns"
    Gen.(pair (int_range 1 4) (int_range 1 4))
    (fun (w0, w1) ->
      let t = Gprs.Order.create Gprs.Order.Weighted ~group_weights:[| w0; w1 |] in
      Gprs.Order.add_thread t ~tid:0 ~group:0;
      Gprs.Order.add_thread t ~tid:1 ~group:1;
      let turns0 = ref 0 and turns1 = ref 0 in
      let cycles = 12 in
      for _ = 1 to cycles * (w0 + w1) do
        match Gprs.Order.holder t with
        | Some 0 ->
          incr turns0;
          Gprs.Order.advance t ~granted:0
        | Some 1 ->
          incr turns1;
          Gprs.Order.advance t ~granted:1
        | Some _ | None -> ()
      done;
      !turns0 = cycles * w0 && !turns1 = cycles * w1)

(* --- Scheduler conservation ------------------------------------------ *)

let prop_scheduler_conservation =
  case "scheduler: every enqueued item is taken exactly once"
    Gen.(
      pair (int_range 1 8)
        (list_size (int_range 1 200) (pair (int_range 0 7) (int_range 0 10_000))))
    (fun (n_ctx, items) ->
      let s = Sched.Scheduler.create Sched.Scheduler.Work_steal ~n_contexts:n_ctx in
      List.iteri
        (fun i (hint, _) -> Sched.Scheduler.enqueue s ~ctx_hint:hint (i + 1))
        items;
      let taken = Hashtbl.create 64 in
      let rec drain ctx =
        match Sched.Scheduler.take s ~ctx with
        | Some (x, _) ->
          if Hashtbl.mem taken x then raise Exit;
          Hashtbl.add taken x ();
          drain ((ctx + 1) mod n_ctx)
        | None -> ()
      in
      (match drain 0 with () -> () | exception Exit -> ());
      Hashtbl.length taken = List.length items && Sched.Scheduler.is_empty s)

(* --- Barrier counters -------------------------------------------------- *)

let prop_barrier_counters =
  case ~count:40 "barriers: seq = done for every thread after a clean run"
    Gen.(pair (int_range 2 6) (int_range 1 4))
    (fun (n, _steps) ->
      let p = Tprog.barrier_phases ~n () in
      let r =
        Gprs.Engine.run { Gprs.Engine.default_config with n_contexts = 3 } p
      in
      (not r.Exec.State.dnc) && Vm.Mem.read r.Exec.State.final_mem 0 = 0)

(* --- GPRS-lint: well-formed programs pass, mutations fail ------------- *)

(* Straight-line single-proc programs assembled from three well-formed
   segment shapes: pure compute, a balanced lock/compute/unlock critical
   section, and a CPR region wrapping a non-standard atomic. Every
   generated program gets at least one critical section and one region
   appended so the mutation property always has something to break. *)
type lint_seg = LCompute of int | LLocked of int * int | LRegion of int

let lint_segs_gen =
  Gen.(
    map
      (fun segs -> segs @ [ LLocked (0, 5); LRegion 5 ])
      (list_size (int_range 0 12)
         (frequency
            [
              (2, map (fun c -> LCompute (c + 1)) (int_range 0 50));
              ( 3,
                map2
                  (fun m c -> LLocked (m, c + 1))
                  (int_range 0 3) (int_range 0 50) );
              (2, map (fun c -> LRegion (c + 1)) (int_range 0 50));
            ])))

let build_lint_prog segs =
  let open Vm.Builder in
  let m = proc "main" in
  List.iter
    (function
      | LCompute c -> compute m c
      | LLocked (mu, c) ->
        lock_const m mu;
        compute m c;
        unlock_const m mu
      | LRegion c ->
        cpr_begin m;
        compute m c;
        nonstd_atomic m ~var:(fun _ -> 0) ~dst:1 (fun ~old _ -> old + 1);
        cpr_end m)
    segs;
  exit_ m;
  program ~n_mutexes:4 ~n_atomics:1 ~entry:"main" [ finish m ]

let prop_lint_wellformed_clean =
  case ~count:100 "lint: well-formed builder programs have no errors"
    lint_segs_gen
    (fun segs -> not (Lint.Check.has_errors (Lint.Check.program (build_lint_prog segs))))

let prop_lint_mutation_caught =
  case ~count:100 "lint: dropping an unlock or cpr_end is always an error"
    Gen.(pair lint_segs_gen (int_range 0 1_000_000))
    (fun (segs, pick) ->
      let p = build_lint_prog segs in
      let main = List.assoc "main" p.Vm.Isa.procs in
      let droppable =
        List.filteri (fun _ i ->
            match i with Vm.Isa.Unlock _ | Vm.Isa.Cpr_end -> true | _ -> false)
          (Array.to_list main.Vm.Isa.code)
        |> List.length
      in
      let victim_idx =
        (* index (among code positions) of the (pick mod droppable)-th
           Unlock/Cpr_end instruction *)
        let target = pick mod droppable in
        let n = ref (-1) in
        let found = ref (-1) in
        Array.iteri
          (fun i instr ->
            match instr with
            | Vm.Isa.Unlock _ | Vm.Isa.Cpr_end ->
              incr n;
              if !n = target then found := i
            | _ -> ())
          main.Vm.Isa.code;
        !found
      in
      let code = Array.copy main.Vm.Isa.code in
      code.(victim_idx) <-
        Vm.Isa.Work { cost = (fun _ -> 0); run = (fun _ -> ()) };
      let mutated =
        {
          p with
          Vm.Isa.procs =
            [ ("main", { main with Vm.Isa.code }) ];
        }
      in
      Lint.Check.has_errors (Lint.Check.program mutated))

(* --- System-level: globally precise restart -------------------------- *)

let prop_gprs_recovery_exact =
  case ~count:25 "gprs: faulty run's result equals the fault-free result"
    Gen.(quad (int_range 2 5) (int_range 4 14) (int_range 1 10_000) (int_range 1 6))
    (fun (workers, iters, seed, rate10) ->
      (* Rates up to 60/s: comfortably below the livelock threshold of
         this single-mutex workload (every sub-thread aliases the lock,
         so a fault squashes the whole unretired suffix; losses must stay
         under the inter-fault gap for progress). *)
      let p = Tprog.locked_counter ~work:20_000 ~workers ~iters () in
      let r =
        Gprs.Engine.run
          {
            Gprs.Engine.default_config with
            n_contexts = 4;
            seed;
            injector =
              Faults.Injector.config ~seed
                ~process:Faults.Injector.Poisson (float_of_int rate10 *. 10.0);
            max_cycles = Some 2_000_000_000;
          }
          p
      in
      (not r.Exec.State.dnc)
      && Vm.Mem.read r.Exec.State.final_mem 0 = workers * iters)

let prop_cpr_recovery_exact =
  case ~count:15 "cpr: faulty run's result equals the fault-free result"
    Gen.(triple (int_range 2 4) (int_range 4 10) (int_range 1 10_000))
    (fun (workers, iters, seed) ->
      let p = Tprog.locked_counter ~work:20_000 ~workers ~iters () in
      let r =
        Cpr.run
          {
            Cpr.default_config with
            n_contexts = 4;
            seed;
            checkpoint_interval = 0.01;
            injector = Faults.Injector.config ~seed 15.0;
          }
          p
      in
      (not r.Exec.State.dnc)
      && Vm.Mem.read r.Exec.State.final_mem 0 = workers * iters)

(* --- WAL: pruning and dropping never strand or invent entries -------- *)

(* A plan is a list of appends (by order id) followed by interleaved
   prune/drop operations; the live set must always be exactly the
   appended entries minus the pruned and dropped ones. *)
let wal_plan_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 80) (int_range 0 9))
      (list_size (int_range 0 8) (pair bool (int_range 0 9))))

let prop_wal_no_stranding =
  case "wal: prune_below + drop_for never strand entries" wal_plan_gen
    (fun (orders, cuts) ->
      let w = Wal.create () in
      List.iter
        (fun o -> ignore (Wal.append w ~order:o (Wal.Rol_insert { sub = o })))
        orders;
      let live = ref (List.length orders) in
      let gone_below = ref 0 in
      let dropped = Hashtbl.create 8 in
      List.iter
        (fun (is_prune, o) ->
          if is_prune then begin
            let n = Wal.prune_below w ~order:o in
            live := !live - n;
            gone_below := Stdlib.max !gone_below o
          end
          else begin
            let n = Wal.drop_for w ~orders:(fun o' -> o' = o) in
            live := !live - n;
            if o >= !gone_below then Hashtbl.replace dropped o ()
          end)
        cuts;
      let expect =
        List.length
          (List.filter
             (fun o -> o >= !gone_below && not (Hashtbl.mem dropped o))
             orders)
      in
      Wal.size w = !live && !live = expect
      && Wal.high_water w = List.length orders
      && List.length (Wal.entries_for w ~orders:(fun _ -> true)) = expect)

let prop_wal_entries_newest_first =
  case "wal: entries_for is strictly newest-first in LSN"
    (QCheck2.Gen.list_size
       (QCheck2.Gen.int_range 1 100)
       (QCheck2.Gen.int_range 0 5))
    (fun orders ->
      let w = Wal.create () in
      List.iter
        (fun o -> ignore (Wal.append w ~order:o (Wal.Io_op { file = 0; words = o })))
        orders;
      let rec strictly_desc = function
        | (a : Wal.entry) :: (b :: _ as rest) ->
          a.Wal.lsn > b.Wal.lsn && strictly_desc rest
        | _ -> true
      in
      strictly_desc (Wal.entries_for w ~orders:(fun o -> o mod 2 = 0)))

(* --- Allocator: squash-undo restores the free list exactly ----------- *)

(* The squashed sub-thread allocated random blocks (its frees were
   quarantined, so allocs are the only allocator mutations to undo).
   Undoing them newest-first must restore brk and the coalesced free
   list bit-exactly, from any fragmentation the prologue created. *)
let prop_alloc_undo_exact =
  case "allocator: alloc undo restores free list exactly (coalescing)"
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 30) (pair (int_range 1 16) bool))
        (list_size (int_range 1 30) (int_range 1 24))
        int)
    (fun (prologue, sub_sizes, _seed) ->
      let m = Vm.Mem.create ~words:8192 in
      (* Fragment the arena: retired history the undo must not disturb. *)
      List.iter
        (fun (size, do_free) ->
          let a = Vm.Mem.alloc m size in
          if do_free then Vm.Mem.free m a)
        prologue;
      let before = Vm.Mem.alloc_parts m in
      let blocks = List.map (fun s -> Vm.Mem.alloc m s) sub_sizes in
      List.iter (fun a -> Vm.Mem.undo_alloc m a) (List.rev blocks);
      Vm.Mem.alloc_parts m = before)

let suite =
  [
    prop_prng_bounds;
    prop_prng_copy_independent;
    prop_evq_sorted;
    prop_evq_cancel;
    prop_deque_model;
    prop_fifo_model;
    prop_alloc_no_overlap;
    prop_alloc_free_roundtrip;
    prop_alloc_coalesce;
    prop_mem_image_equiv;
    prop_undo_restores;
    prop_paged_undo_equiv;
    prop_rol_head_is_min;
    prop_rol_retire_prefix;
    prop_order_grants_eligible;
    prop_order_fair;
    prop_weighted_turn_share;
    prop_scheduler_conservation;
    prop_barrier_counters;
    prop_chunks_partition;
    prop_lint_wellformed_clean;
    prop_lint_mutation_caught;
    prop_gprs_recovery_exact;
    prop_cpr_recovery_exact;
    prop_wal_no_stranding;
    prop_wal_entries_newest_first;
    prop_alloc_undo_exact;
  ]
