(* Trace compilation must be a pure performance transformation: every
   observable of a run — output digest, simulated cycles, DNC flag, and
   every statistic except the profiling counters themselves — must be
   bit-identical with compilation on and off, for all three engines,
   under faults, checkpoints, recovery, whole-runtime crashes and
   restart. Directed tests additionally pin down the two deopt paths
   (mispredicted guard, horizon inside a trace) actually firing. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let n_contexts = 4
let scale = 0.08

let build (spec : Workloads.Workload.spec) =
  spec.Workloads.Workload.build ~n_contexts ~grain:Workloads.Workload.Default
    ~scale

(* Everything observable about a run. Profiling keys ("dispatch.*",
   "fuse.*", "compile.*") are the one legitimate difference between the
   legs. *)
type obs = {
  o_digest : string;
  o_cycles : int;
  o_dnc : bool;
  o_stats : (string * float) list;
}

let prefixed ~prefix k =
  String.length k >= String.length prefix
  && String.sub k 0 (String.length prefix) = prefix

let observe digest (r : Exec.State.run_result) =
  {
    o_digest = digest r;
    o_cycles = r.Exec.State.sim_cycles;
    o_dnc = r.Exec.State.dnc;
    o_stats =
      List.filter
        (fun (k, _) ->
          (not (prefixed ~prefix:"fuse." k))
          && (not (prefixed ~prefix:"dispatch." k))
          && (not (prefixed ~prefix:"compile." k))
          (* Which hops commit from windows depends on host timing, so
             the par.* counters are exempt from the determinism contract. *)
          && not (prefixed ~prefix:"par." k))
        (Sim.Stats.to_assoc r.Exec.State.run_stats);
  }

let with_compiling b f =
  let saved = Vm.Block.compiling () in
  Vm.Block.set_compiling b;
  Fun.protect ~finally:(fun () -> Vm.Block.set_compiling saved) f

let with_profiling f =
  Vm.Block.set_profiling true;
  Fun.protect ~finally:(fun () -> Vm.Block.set_profiling false) f

(* The directed deopt tests assert that traces are entered, which needs
   fused dispatch on (compilation rides on it) even when the suite runs
   under GPRS_NO_FUSE=1. *)
let with_fusing_on f =
  let saved = Vm.Block.fusing () in
  Vm.Block.set_fusing true;
  Fun.protect ~finally:(fun () -> Vm.Block.set_fusing saved) f

(* Run [f] once per leg (fusion stays on in both — compilation rides on
   top of the fused dispatch); [f] must build its own program so each
   leg gets fresh mutable memory. *)
let both_legs f = (with_compiling true f, with_compiling false f)

let explain_stats_diff a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) b.o_stats;
  let diffs =
    List.filter_map
      (fun (k, v) ->
        match Hashtbl.find_opt tbl k with
        | Some v' when v = v' -> None
        | Some v' -> Some (Printf.sprintf "%s: compiled=%g interp=%g" k v v')
        | None -> Some (Printf.sprintf "%s: compiled=%g interp=absent" k v))
      a.o_stats
  in
  let missing =
    List.filter_map
      (fun (k, v) ->
        if List.mem_assoc k a.o_stats then None
        else Some (Printf.sprintf "%s: compiled=absent interp=%g" k v))
      b.o_stats
  in
  String.concat "; " (diffs @ missing)

let check_identical name (compiled, interp) =
  checks (name ^ ": digest") interp.o_digest compiled.o_digest;
  Alcotest.(check int) (name ^ ": sim_cycles") interp.o_cycles compiled.o_cycles;
  checkb (name ^ ": dnc") interp.o_dnc compiled.o_dnc;
  if compiled.o_stats <> interp.o_stats then
    Alcotest.failf "%s: stats differ — %s" name
      (explain_stats_diff compiled interp)

(* Same fault-tolerance tuning as test_integration / test_fusion. *)
let gprs_k = function
  | "blackscholes" | "swaptions" | "barnes-hut" -> 1.2
  | "canneal" -> 3.0
  | _ -> 6.0

let rate_for ?cap ~k ~base () =
  let base_s =
    Sim.Time.to_seconds
      ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
  in
  let r = k /. base_s in
  match cap with Some c -> Float.min c r | None -> r

let baseline_cycles spec =
  (Exec.Baseline.run
     { Exec.Baseline.default_config with n_contexts }
     (build spec))
    .Exec.State.sim_cycles

(* A compute-bound program whose hot path compiles into a looping
   superblock: workers run [iters] outer iterations of an [inner]-long
   loop of two fused steps, then publish their private count through an
   atomic. The inner loop is one closure cycle; its exit branch
   mispredicts once per outer iteration. *)
let compute_loop ?(cost = 400) ~workers ~iters ~inner () =
  let open Vm.Builder in
  let worker = proc "worker" in
  for_up worker ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> iters) (fun () ->
      for_up worker ~reg:2 ~from:(fun _ -> 0) ~until:(fun _ -> inner) (fun () ->
          work_const worker cost (fun env ->
              Vm.Env.set env 3 (Vm.Env.get env 3 + 1));
          compute worker (cost / 2)));
  atomic worker ~var:(fun _ -> 0) ~dst:4 (fun ~old r -> old + r.(3));
  exit_ worker;
  let main = proc "main" in
  for i = 0 to workers - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [||])
  done;
  for i = 0 to workers - 1 do
    join_reg main (10 + i)
  done;
  atomic main ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old);
  work_const main 1 (fun env -> env.Vm.Env.write 0 (Vm.Env.get env 3));
  exit_ main;
  program ~mem_words:64 ~n_atomics:1 ~n_groups:2 ~entry:"main"
    [ finish main; finish worker ]

let mem_digest (r : Exec.State.run_result) =
  string_of_int (Vm.Mem.read r.Exec.State.final_mem 0)

(* --- all workloads, all three engines -------------------------------- *)

let test_baseline_all_workloads () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let digest = spec.Workloads.Workload.digest in
      let legs =
        both_legs (fun () ->
            observe digest
              (Exec.Baseline.run
                 { Exec.Baseline.default_config with n_contexts }
                 (build spec)))
      in
      check_identical ("baseline/" ^ spec.Workloads.Workload.name) legs)
    Workloads.Suite.all

let test_gprs_all_workloads_with_faults () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let base = baseline_cycles spec in
      let legs =
        both_legs (fun () ->
            observe spec.Workloads.Workload.digest
              (Gprs.Engine.run
                 {
                   Gprs.Engine.default_config with
                   n_contexts;
                   injector =
                     Faults.Injector.config (rate_for ~k:(gprs_k name) ~base ());
                   max_cycles = Some (300 * base);
                 }
                 (build spec)))
      in
      check_identical ("gprs/" ^ name) legs)
    Workloads.Suite.all

let test_cpr_all_workloads_with_faults () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let base = baseline_cycles spec in
      let legs =
        both_legs (fun () ->
            observe spec.Workloads.Workload.digest
              (Cpr.run
                 {
                   Cpr.default_config with
                   n_contexts;
                   checkpoint_interval = 0.002;
                   injector =
                     Faults.Injector.config (rate_for ~cap:25.0 ~k:2.0 ~base ());
                   max_cycles = Some (300 * base);
                 }
                 (build spec)))
      in
      check_identical ("cpr/" ^ name) legs)
    Workloads.Suite.all

(* --- crash-restart: cold recovery under both legs --------------------- *)

(* The WAL crash sweep replays every crash point and compares each
   recovered digest against the fault-free run; compiled and interpreted
   legs must both pass it and enumerate the same crash points (the WAL
   itself is an observable). *)
let test_crash_sweep_both_legs () =
  let spec = Workloads.Suite.find "histogram" in
  let program =
    spec.Workloads.Workload.build ~n_contexts ~grain:Workloads.Workload.Default
      ~scale:0.05
  in
  let sweep leg =
    Recovery.sweep_gprs ~leg
      ~cfg:{ Gprs.Engine.default_config with n_contexts; seed = 3 }
      ~digest:spec.Workloads.Workload.digest program
  in
  let compiled = with_compiling true (fun () -> sweep "compiled") in
  let interp = with_compiling false (fun () -> sweep "interp") in
  checkb
    (Format.asprintf "%a" Recovery.pp_report compiled)
    true (Recovery.leg_ok compiled);
  checkb
    (Format.asprintf "%a" Recovery.pp_report interp)
    true (Recovery.leg_ok interp);
  Alcotest.(check int)
    "same crash points" interp.Recovery.points_total
    compiled.Recovery.points_total;
  checkb "points enumerated" true (compiled.Recovery.points_total > 0)

(* --- directed: a mispredicted branch guard must deopt ------------------ *)

let test_guard_deopt () =
  let run () =
    Exec.Baseline.run
      { Exec.Baseline.default_config with n_contexts }
      (compute_loop ~workers:2 ~iters:6 ~inner:40 ())
  in
  with_fusing_on @@ fun () ->
  with_profiling (fun () ->
      let compiled_raw = with_compiling true run in
      let compiled = observe mem_digest compiled_raw in
      let interp = observe mem_digest (with_compiling false run) in
      checks "counter value" "480" compiled.o_digest;
      let stat k = Sim.Stats.get compiled_raw.Exec.State.run_stats k in
      checkb "traces were entered" true (stat "compile.entries" > 0);
      checkb "loop exits mispredicted" true (stat "compile.deopt.guard" > 0);
      check_identical "guard deopt" (compiled, interp))

(* --- directed: a horizon landing mid-trace must deopt ------------------ *)

(* Under CPR the hop horizon includes the checkpoint alarm; an interval
   far shorter than the workers' compiled loops forces the alarm to land
   strictly inside traces, so the hoisted per-hop bound (not a lucky
   trace end) is what keeps the legs identical. *)
let test_horizon_deopt () =
  let run () =
    Cpr.run
      { Cpr.default_config with n_contexts; checkpoint_interval = 0.0005 }
      (compute_loop ~cost:2_000 ~workers:2 ~iters:4 ~inner:300 ())
  in
  with_fusing_on @@ fun () ->
  with_profiling (fun () ->
      let compiled_raw = with_compiling true run in
      let compiled = observe mem_digest compiled_raw in
      let interp = observe mem_digest (with_compiling false run) in
      checks "counter value" "2400" compiled.o_digest;
      let stat k = Sim.Stats.get compiled_raw.Exec.State.run_stats k in
      checkb "traces were entered" true (stat "compile.entries" > 0);
      checkb "horizon landed mid-trace" true
        (stat "compile.deopt.horizon" > 0);
      checkb "checkpoints actually fired" true
        (stat "cpr.checkpoints" > 0);
      check_identical "horizon deopt" (compiled, interp))

(* --- property: random compiled loops under faults ---------------------- *)

let qcase ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let obs_equal a b =
  a.o_digest = b.o_digest && a.o_cycles = b.o_cycles && a.o_dnc = b.o_dnc
  && a.o_stats = b.o_stats

let prop_compile_invisible =
  qcase "gprs: compiled ≡ interpreted on random compute loops"
    QCheck2.Gen.(
      quad (int_range 2 4) (int_range 2 8) (int_range 5 60)
        (int_range 1 10_000))
    (fun (workers, iters, inner, seed) ->
      let run () =
        observe mem_digest
          (Gprs.Engine.run
             {
               Gprs.Engine.default_config with
               n_contexts;
               seed;
               injector =
                 Faults.Injector.config ~seed ~process:Faults.Injector.Poisson
                   300.0;
               max_cycles = Some 2_000_000_000;
             }
             (compute_loop ~workers ~iters ~inner ()))
      in
      let compiled, interp = both_legs run in
      obs_equal compiled interp)

let suite =
  [
    Alcotest.test_case "baseline: all workloads bit-identical" `Slow
      test_baseline_all_workloads;
    Alcotest.test_case "gprs: all workloads + faults bit-identical" `Slow
      test_gprs_all_workloads_with_faults;
    Alcotest.test_case "cpr: all workloads + faults bit-identical" `Slow
      test_cpr_all_workloads_with_faults;
    Alcotest.test_case "gprs: crash sweep bit-identical" `Slow
      test_crash_sweep_both_legs;
    Alcotest.test_case "guard deopt: mispredicted loop exit" `Quick
      test_guard_deopt;
    Alcotest.test_case "horizon deopt: checkpoint alarm mid-trace" `Quick
      test_horizon_deopt;
    prop_compile_invisible;
  ]
