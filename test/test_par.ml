(* Intra-run parallelism must be a pure wall-clock transformation:
   every observable of a run — output digest, simulated cycles, DNC
   flag, and every statistic except the par.* counters themselves —
   must be bit-identical between -j 1 (sequential dispatch) and -j N
   (speculative windows on worker domains), for all three engines,
   under faults, crashes and cold restart. Directed tests pin down the
   squash path, the coordinator-fallback path, and the
   serialize-under-TSAN rule actually firing. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let n_contexts = 4
let scale = 0.08
let par_n = 4

let build (spec : Workloads.Workload.spec) =
  spec.Workloads.Workload.build ~n_contexts ~grain:Workloads.Workload.Default
    ~scale

let prefixed ~prefix k =
  String.length k >= String.length prefix
  && String.sub k 0 (String.length prefix) = prefix

type obs = {
  o_digest : string;
  o_cycles : int;
  o_dnc : bool;
  o_stats : (string * float) list;
}

let observe digest (r : Exec.State.run_result) =
  {
    o_digest = digest r;
    o_cycles = r.Exec.State.sim_cycles;
    o_dnc = r.Exec.State.dnc;
    o_stats =
      List.filter
        (fun (k, _) -> not (prefixed ~prefix:"par." k))
        (Sim.Stats.to_assoc r.Exec.State.run_stats);
  }

let with_par_jobs j f =
  let saved = Exec.Par.jobs () in
  Exec.Par.set_jobs j;
  Fun.protect ~finally:(fun () -> Exec.Par.set_jobs saved) f

(* Windows ride on fused dispatch, so force it on even when the suite
   runs under GPRS_NO_FUSE=1 — otherwise the parallel leg would be
   trivially sequential and the test vacuous. *)
let with_fusing_on f =
  let saved = Vm.Block.fusing () in
  Vm.Block.set_fusing true;
  Fun.protect ~finally:(fun () -> Vm.Block.set_fusing saved) f

let with_profiling f =
  Vm.Block.set_profiling true;
  Fun.protect ~finally:(fun () -> Vm.Block.set_profiling false) f

(* Run [f] at -j 1 and -j N; [f] must build its own program so each leg
   gets fresh mutable memory. *)
let both_legs f =
  (with_par_jobs par_n f, with_par_jobs 1 f)

let explain_stats_diff a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) b.o_stats;
  let diffs =
    List.filter_map
      (fun (k, v) ->
        match Hashtbl.find_opt tbl k with
        | Some v' when v = v' -> None
        | Some v' -> Some (Printf.sprintf "%s: par=%g seq=%g" k v v')
        | None -> Some (Printf.sprintf "%s: par=%g seq=absent" k v))
      a.o_stats
  in
  let missing =
    List.filter_map
      (fun (k, v) ->
        if List.mem_assoc k a.o_stats then None
        else Some (Printf.sprintf "%s: par=absent seq=%g" k v))
      b.o_stats
  in
  String.concat "; " (diffs @ missing)

let check_identical name (par, seq) =
  checks (name ^ ": digest") seq.o_digest par.o_digest;
  Alcotest.(check int) (name ^ ": sim_cycles") seq.o_cycles par.o_cycles;
  checkb (name ^ ": dnc") seq.o_dnc par.o_dnc;
  if par.o_stats <> seq.o_stats then
    Alcotest.failf "%s: stats differ — %s" name (explain_stats_diff par seq)

(* Same fault-tolerance tuning as test_integration / test_compile. *)
let gprs_k = function
  | "blackscholes" | "swaptions" | "barnes-hut" -> 1.2
  | "canneal" -> 3.0
  | _ -> 6.0

let rate_for ?cap ~k ~base () =
  let base_s =
    Sim.Time.to_seconds
      ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
  in
  let r = k /. base_s in
  match cap with Some c -> Float.min c r | None -> r

let baseline_cycles spec =
  (Exec.Baseline.run
     { Exec.Baseline.default_config with n_contexts }
     (build spec))
    .Exec.State.sim_cycles

(* --- all workloads, all three engines, fault-free and faulty ---------- *)

let test_baseline_all_workloads () =
  with_fusing_on @@ fun () ->
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let digest = spec.Workloads.Workload.digest in
      let legs =
        both_legs (fun () ->
            observe digest
              (Exec.Baseline.run
                 { Exec.Baseline.default_config with n_contexts }
                 (build spec)))
      in
      check_identical ("baseline/" ^ spec.Workloads.Workload.name) legs)
    Workloads.Suite.all

let test_gprs_all_workloads_with_faults () =
  with_fusing_on @@ fun () ->
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let base = baseline_cycles spec in
      let legs =
        both_legs (fun () ->
            observe spec.Workloads.Workload.digest
              (Gprs.Engine.run
                 {
                   Gprs.Engine.default_config with
                   n_contexts;
                   injector =
                     Faults.Injector.config (rate_for ~k:(gprs_k name) ~base ());
                   max_cycles = Some (300 * base);
                 }
                 (build spec)))
      in
      check_identical ("gprs/" ^ name) legs)
    Workloads.Suite.all

let test_cpr_all_workloads_with_faults () =
  with_fusing_on @@ fun () ->
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let base = baseline_cycles spec in
      let legs =
        both_legs (fun () ->
            observe spec.Workloads.Workload.digest
              (Cpr.run
                 {
                   Cpr.default_config with
                   n_contexts;
                   checkpoint_interval = 0.002;
                   injector =
                     Faults.Injector.config (rate_for ~cap:25.0 ~k:2.0 ~base ());
                   max_cycles = Some (300 * base);
                 }
                 (build spec)))
      in
      check_identical ("cpr/" ^ name) legs)
    Workloads.Suite.all

(* --- crash-restart: the WAL crash sweep under both legs ---------------- *)

let test_crash_sweep_both_legs () =
  with_fusing_on @@ fun () ->
  let spec = Workloads.Suite.find "histogram" in
  let program =
    spec.Workloads.Workload.build ~n_contexts ~grain:Workloads.Workload.Default
      ~scale:0.05
  in
  let sweep leg =
    Recovery.sweep_gprs ~leg
      ~cfg:{ Gprs.Engine.default_config with n_contexts; seed = 3 }
      ~digest:spec.Workloads.Workload.digest program
  in
  let par = with_par_jobs par_n (fun () -> sweep "par") in
  let seq = with_par_jobs 1 (fun () -> sweep "seq") in
  checkb (Format.asprintf "%a" Recovery.pp_report par) true (Recovery.leg_ok par);
  checkb (Format.asprintf "%a" Recovery.pp_report seq) true (Recovery.leg_ok seq);
  Alcotest.(check int)
    "same crash points" seq.Recovery.points_total par.Recovery.points_total;
  checkb "points enumerated" true (par.Recovery.points_total > 0)

(* --- directed: windows actually commit --------------------------------- *)

(* pbzip2 under GPRS is the window scheduler's bread and butter: token
   grants leave threads parked exactly at Work landings. The committed
   counter is host-timing-dependent, so rather than assert a count from
   one run, retry a few times and demand that windows engage at least
   once — while every run stays bit-identical to the sequential leg. *)
let test_windows_commit () =
  with_fusing_on @@ fun () ->
  with_profiling @@ fun () ->
  let spec = Workloads.Suite.find "pbzip2" in
  let run () =
    Gprs.Engine.run
      { Gprs.Engine.default_config with n_contexts = 8 }
      (spec.Workloads.Workload.build ~n_contexts:8
         ~grain:Workloads.Workload.Default ~scale:1.0)
  in
  let seq = with_par_jobs 1 (fun () -> observe spec.Workloads.Workload.digest (run ())) in
  let committed = ref 0.0 in
  let attempts = 20 in
  let i = ref 0 in
  while !committed = 0.0 && !i < attempts do
    incr i;
    let r = with_par_jobs par_n run in
    check_identical "windows commit"
      (observe spec.Workloads.Workload.digest r, seq);
    committed :=
      !committed +. float_of_int (Sim.Stats.get r.Exec.State.run_stats "par.committed")
  done;
  (* Under GPRS_TSAN=1 windows are serialized away entirely, so only the
     bit-identity above is checkable. *)
  if not (Exec.Tsan.enabled ()) then
    checkb
      (Printf.sprintf "some window committed within %d runs" attempts)
      true (!committed > 0.0)

(* --- directed: conflicting windows squash, the run stays exact --------- *)

(* canneal's random swaps make threads read locations other threads
   write, so speculative windows keep failing read validation; the run
   must stay bit-identical anyway, with every consumed window accounted
   committed, squashed or fallen back. *)
let test_squash_is_sound () =
  with_fusing_on @@ fun () ->
  with_profiling @@ fun () ->
  let spec = Workloads.Suite.find "canneal" in
  let run () =
    Gprs.Engine.run
      { Gprs.Engine.default_config with n_contexts = 8 }
      (spec.Workloads.Workload.build ~n_contexts:8
         ~grain:Workloads.Workload.Fine ~scale:0.5)
  in
  let seq = with_par_jobs 1 (fun () -> observe spec.Workloads.Workload.digest (run ())) in
  let r = with_par_jobs par_n run in
  check_identical "squash soundness"
    (observe spec.Workloads.Workload.digest r, seq);
  let stat k = Sim.Stats.get r.Exec.State.run_stats k in
  checkb "window accounting closes" true
    (stat "par.committed" + stat "par.squashed" <= stat "par.windows")

(* --- directed: non-fusible landings stay on the coordinator ------------ *)

(* A lock-convoy program: every hop starts at a Lock, so no window is
   ever leased for it — the conservative fallback leg is the whole run.
   The parallel leg must still be exact, with zero windows. *)
let test_coordinator_fallback () =
  with_fusing_on @@ fun () ->
  with_profiling @@ fun () ->
  let program () = Tprog.locked_counter ~work:50 ~workers:4 ~iters:30 () in
  let digest (r : Exec.State.run_result) =
    string_of_int (Vm.Mem.read r.Exec.State.final_mem 0)
  in
  let run () =
    Exec.Baseline.run
      { Exec.Baseline.default_config with n_contexts }
      (program ())
  in
  let seq = with_par_jobs 1 (fun () -> observe digest (run ())) in
  let r = with_par_jobs par_n run in
  check_identical "coordinator fallback" (observe digest r, seq);
  checks "counter value" "120" (digest r)

(* --- serialize-under-TSAN: the pinned choice --------------------------- *)

let test_tsan_serializes () =
  with_par_jobs par_n @@ fun () ->
  let was = Exec.Tsan.enabled () in
  Exec.Tsan.set_enabled true;
  Fun.protect ~finally:(fun () -> Exec.Tsan.set_enabled was) @@ fun () ->
  Alcotest.(check int) "effective_jobs forced to 1" 1 (Exec.Par.effective_jobs ());
  (* And a full sanitized run must neither crash nor drift. *)
  with_fusing_on @@ fun () ->
  let spec = Workloads.Suite.find "histogram" in
  let run () =
    Gprs.Engine.run
      { Gprs.Engine.default_config with n_contexts }
      (build spec)
  in
  let par = observe spec.Workloads.Workload.digest (run ()) in
  let seq = with_par_jobs 1 (fun () -> observe spec.Workloads.Workload.digest (run ())) in
  check_identical "tsan serialized run" (par, seq)

let test_effective_jobs_restored () =
  with_par_jobs 3 @@ fun () ->
  Alcotest.(check int) "set_jobs visible" 3 (Exec.Par.jobs ());
  Alcotest.(check int) "effective = requested unless tsan serializes"
    (if Exec.Tsan.enabled () then 1 else 3)
    (Exec.Par.effective_jobs ())

(* --- property: random compute programs, -j 1 ≡ -j N -------------------- *)

let qcase ?(count = 10) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let obs_equal a b =
  a.o_digest = b.o_digest && a.o_cycles = b.o_cycles && a.o_dnc = b.o_dnc
  && a.o_stats = b.o_stats

let mem_digest (r : Exec.State.run_result) =
  string_of_int (Vm.Mem.read r.Exec.State.final_mem 0)

let prop_par_invisible =
  qcase "gprs: -j N ≡ -j 1 on random fork/join + locked programs"
    QCheck2.Gen.(
      quad (int_range 2 4) (int_range 2 20) (int_range 20 2_000)
        (int_range 1 10_000))
    (fun (workers, iters, work, seed) ->
      with_fusing_on @@ fun () ->
      let run () =
        observe mem_digest
          (Gprs.Engine.run
             {
               Gprs.Engine.default_config with
               n_contexts;
               seed;
               injector =
                 Faults.Injector.config ~seed ~process:Faults.Injector.Poisson
                   300.0;
               max_cycles = Some 2_000_000_000;
             }
             (Tprog.locked_counter ~work ~workers ~iters ()))
      in
      let par, seq = both_legs run in
      obs_equal par seq)

let suite =
  [
    Alcotest.test_case "baseline: all workloads bit-identical" `Slow
      test_baseline_all_workloads;
    Alcotest.test_case "gprs: all workloads + faults bit-identical" `Slow
      test_gprs_all_workloads_with_faults;
    Alcotest.test_case "cpr: all workloads + faults bit-identical" `Slow
      test_cpr_all_workloads_with_faults;
    Alcotest.test_case "gprs: crash sweep bit-identical" `Slow
      test_crash_sweep_both_legs;
    Alcotest.test_case "windows commit on pbzip2" `Quick test_windows_commit;
    Alcotest.test_case "conflicting windows squash soundly" `Quick
      test_squash_is_sound;
    Alcotest.test_case "non-fusible hops stay on the coordinator" `Quick
      test_coordinator_fallback;
    Alcotest.test_case "TSAN serializes windows" `Quick test_tsan_serializes;
    Alcotest.test_case "set_jobs round-trips" `Quick
      test_effective_jobs_restored;
    prop_par_invisible;
  ]
